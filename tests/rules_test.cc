#include <gtest/gtest.h>

#include "firestore/rules/rules.h"
#include "tests/test_support.h"

namespace firestore::rules {
namespace {

using model::Document;
using model::Map;
using model::Value;
using testing::Path;

AuthContext User(const std::string& uid) {
  AuthContext auth;
  auth.authenticated = true;
  auth.uid = uid;
  return auth;
}

Document RatingDoc(const std::string& path, const std::string& user_id) {
  Document doc(Path(path), {});
  doc.SetField(model::FieldPath::Single("userId"), Value::String(user_id));
  doc.SetField(model::FieldPath::Single("rating"), Value::Integer(4));
  return doc;
}

// The paper's Figure 3 ruleset.
constexpr char kCodelabRules[] = R"(
  match /restaurants/{restaurantId}/ratings/{ratingId} {
    allow read: if request.auth != null;
    allow create: if request.auth.uid == request.resource.data.userId;
  }
)";

class CodelabRulesTest : public ::testing::Test {
 protected:
  CodelabRulesTest() {
    auto parsed = RuleSet::Parse(kCodelabRules);
    FS_CHECK(parsed.ok());
    rules_ = std::move(parsed).value();
  }
  RuleSet rules_;
};

TEST_F(CodelabRulesTest, AuthenticatedUserCanRead) {
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/restaurants/one/ratings/2");
  req.auth = User("alice");
  EXPECT_TRUE(rules_.Authorize(req).ok());
}

TEST_F(CodelabRulesTest, AnonymousReadDenied) {
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/restaurants/one/ratings/2");
  EXPECT_EQ(rules_.Authorize(req).code(), StatusCode::kPermissionDenied);
}

TEST_F(CodelabRulesTest, CreateWithOwnUserIdAllowed) {
  AccessRequest req;
  req.kind = AccessKind::kCreate;
  req.path = Path("/restaurants/one/ratings/2");
  req.auth = User("alice");
  req.new_resource = RatingDoc("/restaurants/one/ratings/2", "alice");
  EXPECT_TRUE(rules_.Authorize(req).ok());
}

TEST_F(CodelabRulesTest, CreateWithForeignUserIdDenied) {
  AccessRequest req;
  req.kind = AccessKind::kCreate;
  req.path = Path("/restaurants/one/ratings/2");
  req.auth = User("mallory");
  req.new_resource = RatingDoc("/restaurants/one/ratings/2", "alice");
  EXPECT_EQ(rules_.Authorize(req).code(), StatusCode::kPermissionDenied);
}

TEST_F(CodelabRulesTest, UpdatesAndDeletesDenied) {
  // Figure 3: "Updates and deletes of ratings are not allowed."
  AccessRequest req;
  req.kind = AccessKind::kUpdate;
  req.path = Path("/restaurants/one/ratings/2");
  req.auth = User("alice");
  req.resource = RatingDoc("/restaurants/one/ratings/2", "alice");
  req.new_resource = req.resource;
  EXPECT_FALSE(rules_.Authorize(req).ok());
  req.kind = AccessKind::kDelete;
  EXPECT_FALSE(rules_.Authorize(req).ok());
}

TEST_F(CodelabRulesTest, UnmatchedPathDenied) {
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/users/alice");
  req.auth = User("alice");
  EXPECT_FALSE(rules_.Authorize(req).ok());
}

// ---------------------------------------------------------------------------
// Parser coverage

TEST(RulesParserTest, ServiceWrapperAndDatabasesPrefixStripped) {
  auto rules = RuleSet::Parse(R"(
    service cloud.firestore {
      match /databases/{database}/documents {
        match /open/{doc} {
          allow read, write;
        }
      }
    }
  )");
  ASSERT_TRUE(rules.ok());
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/open/x");
  EXPECT_TRUE(rules->Authorize(req).ok());
}

TEST(RulesParserTest, CommentsAndOpLists) {
  auto rules = RuleSet::Parse(R"(
    // everyone may read, owners may write
    match /posts/{id} {
      allow get, list;
      allow create, update: if request.auth.uid == 'owner';
    }
  )");
  ASSERT_TRUE(rules.ok());
  AccessRequest req;
  req.kind = AccessKind::kList;
  req.path = Path("/posts/p");
  EXPECT_TRUE(rules->Authorize(req).ok());
  req.kind = AccessKind::kCreate;
  EXPECT_FALSE(rules->Authorize(req).ok());
  req.auth = User("owner");
  EXPECT_TRUE(rules->Authorize(req).ok());
}

TEST(RulesParserTest, SyntaxErrorsRejected) {
  EXPECT_FALSE(RuleSet::Parse("match {").ok());
  EXPECT_FALSE(RuleSet::Parse("match /a/{x} { allow fly; }").ok());
  EXPECT_FALSE(RuleSet::Parse("match /a/{x} { allow read: if ; }").ok());
  EXPECT_FALSE(RuleSet::Parse("bogus tokens").ok());
  EXPECT_FALSE(RuleSet::Parse("match /a/{x} { allow read: if 'x; }").ok());
}

TEST(RulesParserTest, EmptyRulesetDeniesAll) {
  auto rules = RuleSet::Parse("");
  ASSERT_TRUE(rules.ok());
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/a/b");
  req.auth = User("admin");
  EXPECT_FALSE(rules->Authorize(req).ok());
}

// ---------------------------------------------------------------------------
// Expression semantics

RuleSet MustParse(const std::string& body) {
  auto rules = RuleSet::Parse("match /t/{id} { allow read: if " + body +
                              "; }");
  FS_CHECK(rules.ok());
  return std::move(rules).value();
}

bool ReadAllowed(const RuleSet& rules, AccessRequest req) {
  req.kind = AccessKind::kGet;
  if (req.path.empty()) req.path = Path("/t/x");
  return rules.Authorize(req).ok();
}

TEST(RulesExprTest, BooleanOperators) {
  AccessRequest anon;
  EXPECT_TRUE(ReadAllowed(MustParse("true || false"), anon));
  EXPECT_FALSE(ReadAllowed(MustParse("true && false"), anon));
  EXPECT_TRUE(ReadAllowed(MustParse("!(false)"), anon));
  EXPECT_TRUE(ReadAllowed(MustParse("1 < 2 && 'a' != 'b'"), anon));
}

TEST(RulesExprTest, ShortCircuitPreventsErrors) {
  // request.auth.uid errors for anonymous users; && short-circuits first.
  AccessRequest anon;
  EXPECT_FALSE(ReadAllowed(
      MustParse("request.auth != null && request.auth.uid == 'x'"), anon));
  AccessRequest alice;
  alice.auth = User("x");
  EXPECT_TRUE(ReadAllowed(
      MustParse("request.auth != null && request.auth.uid == 'x'"), alice));
}

TEST(RulesExprTest, ArithmeticAndComparison) {
  AccessRequest anon;
  EXPECT_TRUE(ReadAllowed(MustParse("1 + 1 == 2"), anon));
  EXPECT_TRUE(ReadAllowed(MustParse("5 - 2 >= 3"), anon));
  EXPECT_TRUE(ReadAllowed(MustParse("'foo' + 'bar' == 'foobar'"), anon));
  EXPECT_FALSE(ReadAllowed(MustParse("1 < 'a'"), anon));  // error => deny
}

TEST(RulesExprTest, InOperator) {
  AccessRequest req;
  req.auth = User("bob");
  EXPECT_TRUE(ReadAllowed(
      MustParse("request.auth.uid in ['alice', 'bob']"), req));
  EXPECT_FALSE(ReadAllowed(
      MustParse("request.auth.uid in ['alice', 'carol']"), req));
}

TEST(RulesExprTest, PathVariablesBind) {
  auto rules = RuleSet::Parse(
      "match /users/{userId} { allow read: if request.auth.uid == userId; }");
  ASSERT_TRUE(rules.ok());
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/users/alice");
  req.auth = User("alice");
  EXPECT_TRUE(rules->Authorize(req).ok());
  req.auth = User("bob");
  EXPECT_FALSE(rules->Authorize(req).ok());
}

TEST(RulesExprTest, RestOfPathWildcard) {
  auto rules = RuleSet::Parse(
      "match /shared/{rest=**} { allow read: if request.auth != null; }");
  ASSERT_TRUE(rules.ok());
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/shared/deeply/nested/doc");
  req.auth = User("u");
  EXPECT_TRUE(rules->Authorize(req).ok());
  req.path = Path("/other/doc");
  EXPECT_FALSE(rules->Authorize(req).ok());
}

TEST(RulesExprTest, ResourceDataAccess) {
  auto rules = RuleSet::Parse(
      "match /docs/{id} { allow read: if resource.data.public == true; }");
  ASSERT_TRUE(rules.ok());
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/docs/d");
  Document doc(Path("/docs/d"), {{"public", Value::Boolean(true)}});
  req.resource = doc;
  EXPECT_TRUE(rules->Authorize(req).ok());
  Document priv(Path("/docs/d"), {{"public", Value::Boolean(false)}});
  req.resource = priv;
  EXPECT_FALSE(rules->Authorize(req).ok());
  req.resource.reset();  // missing doc: member access errors => deny
  EXPECT_FALSE(rules->Authorize(req).ok());
}

TEST(RulesExprTest, TokenClaims) {
  auto rules = RuleSet::Parse(
      "match /admin/{id} { allow read: if request.auth.token.admin == true; "
      "}");
  ASSERT_TRUE(rules.ok());
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/admin/x");
  req.auth = User("u");
  req.auth.claims["admin"] = Value::Boolean(true);
  EXPECT_TRUE(rules->Authorize(req).ok());
  req.auth.claims["admin"] = Value::Boolean(false);
  EXPECT_FALSE(rules->Authorize(req).ok());
}

TEST(RulesExprTest, GetAndExistsLookups) {
  // Membership check against another document (paper §III-E: "fetch and
  // inspect fields of other database documents (e.g., check an access
  // control list)").
  auto rules = RuleSet::Parse(R"(
    match /rooms/{roomId} {
      allow read: if request.auth.uid in
          get(/acl/$(roomId)).data.members;
      allow create: if !exists(/acl/$(roomId));
    }
  )");
  ASSERT_TRUE(rules.ok());
  Document acl(Path("/acl/r1"), {});
  acl.SetField(model::FieldPath::Single("members"),
               Value::FromArray({Value::String("alice"),
                                 Value::String("bob")}));
  auto lookup = [&acl](const model::ResourcePath& p)
      -> StatusOr<std::optional<Document>> {
    if (p == acl.name()) return std::optional<Document>(acl);
    return std::optional<Document>();
  };
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/rooms/r1");
  req.auth = User("alice");
  req.lookup = lookup;
  EXPECT_TRUE(rules->Authorize(req).ok());
  req.auth = User("mallory");
  EXPECT_FALSE(rules->Authorize(req).ok());
  // exists() on a missing ACL permits creation.
  req.kind = AccessKind::kCreate;
  req.path = Path("/rooms/r2");
  EXPECT_TRUE(rules->Authorize(req).ok());
  req.path = Path("/rooms/r1");
  EXPECT_FALSE(rules->Authorize(req).ok());
}

TEST(RulesExprTest, RequestMethodAndPath) {
  auto rules = RuleSet::Parse(R"(
    match /docs/{id} {
      allow read: if request.method == 'get';
      allow delete: if request.path == '/docs/removable';
    }
  )");
  ASSERT_TRUE(rules.ok());
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/docs/a");
  EXPECT_TRUE(rules->Authorize(req).ok());
  req.kind = AccessKind::kList;  // 'list' != 'get'
  EXPECT_FALSE(rules->Authorize(req).ok());
  req.kind = AccessKind::kDelete;
  EXPECT_FALSE(rules->Authorize(req).ok());
  req.path = Path("/docs/removable");
  EXPECT_TRUE(rules->Authorize(req).ok());
}

TEST(RulesExprTest, FirstMatchingAllowWinsAcrossSiblings) {
  auto rules = RuleSet::Parse(R"(
    match /a/{id} { allow read: if false; }
    match /a/{id} { allow read: if true; }
  )");
  ASSERT_TRUE(rules.ok());
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/a/x");
  // Default-deny with any-allow-grants semantics: the second block grants.
  EXPECT_TRUE(rules->Authorize(req).ok());
}

TEST(RulesExprTest, NestedMatchBlocksCompose) {
  auto rules = RuleSet::Parse(R"(
    match /restaurants/{rid} {
      allow read;
      match /ratings/{rat} {
        allow read: if rid == 'one';
      }
    }
  )");
  ASSERT_TRUE(rules.ok());
  AccessRequest req;
  req.kind = AccessKind::kGet;
  req.path = Path("/restaurants/any");
  EXPECT_TRUE(rules->Authorize(req).ok());
  req.path = Path("/restaurants/one/ratings/5");
  EXPECT_TRUE(rules->Authorize(req).ok());
  req.path = Path("/restaurants/two/ratings/5");
  EXPECT_FALSE(rules->Authorize(req).ok());
}

}  // namespace
}  // namespace firestore::rules
