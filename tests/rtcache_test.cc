#include <gtest/gtest.h>

#include "rtcache/changelog.h"
#include "rtcache/query_matcher.h"
#include "rtcache/range_ownership.h"
#include "tests/test_support.h"

namespace firestore::rtcache {
namespace {

using backend::DocumentChange;
using backend::WriteOutcome;
using model::Document;
using model::Value;
using spanner::Timestamp;
using testing::Field;
using testing::Path;

// ---------------------------------------------------------------------------
// RangeOwnership

TEST(RangeOwnershipTest, UniformCoversKeySpace) {
  RangeOwnership ranges = RangeOwnership::Uniform(8);
  EXPECT_EQ(ranges.num_ranges(), 8);
  EXPECT_EQ(ranges.OwnerOf(std::string(1, '\x00')), 0);
  EXPECT_EQ(ranges.OwnerOf(std::string(1, '\xff')), 7);
  // Ownership is monotone in the key.
  int prev = 0;
  for (int b = 0; b < 256; ++b) {
    int owner = ranges.OwnerOf(std::string(1, static_cast<char>(b)));
    EXPECT_GE(owner, prev);
    prev = owner;
  }
}

TEST(RangeOwnershipTest, RangesCoveringSpansAndClamps) {
  RangeOwnership ranges = RangeOwnership::Uniform(4);
  // Splits at 0x40, 0x80, 0xc0.
  auto all = ranges.RangesCovering("", "");
  EXPECT_EQ(all.size(), 4u);
  auto first = ranges.RangesCovering("", std::string(1, '\x10'));
  EXPECT_EQ(first, (std::vector<RangeId>{0}));
  auto middle =
      ranges.RangesCovering(std::string(1, '\x45'), std::string(1, '\x85'));
  EXPECT_EQ(middle, (std::vector<RangeId>{1, 2}));
  // Limit exactly on a split point does not include the upper range.
  auto edge = ranges.RangesCovering(std::string(1, '\x45'),
                                    std::string(1, '\x80'));
  EXPECT_EQ(edge, (std::vector<RangeId>{1}));
}

TEST(RangeOwnershipTest, ReshardingBumpsGeneration) {
  RangeOwnership ranges = RangeOwnership::Uniform(2);
  int64_t g0 = ranges.generation();
  ranges.SetSplitPoints({"m"});
  EXPECT_GT(ranges.generation(), g0);
  EXPECT_EQ(ranges.OwnerOf("a"), 0);
  EXPECT_EQ(ranges.OwnerOf("z"), 1);
}

// ---------------------------------------------------------------------------
// Changelog + QueryMatcher

class RtFixture : public ::testing::Test {
 protected:
  RtFixture()
      : clock_(1'000'000),
        ranges_(RangeOwnership::Uniform(1)),  // single range for determinism
        changelog_(&clock_, &ranges_, &matcher_) {
    query_ = query::Query(model::ResourcePath(), "docs");
    matcher_.Subscribe(
        1, "db", query_, {0},
        [this](uint64_t id, const RangeEvent& event) {
          (void)id;
          events_.push_back(event);
        });
  }

  DocumentChange MakeChange(const std::string& path, int64_t v) {
    DocumentChange change;
    change.name = Path(path);
    Document doc(change.name, {{"v", Value::Integer(v)}});
    change.new_doc = std::move(doc);
    return change;
  }

  std::vector<RangeEvent> ChangeEvents() const {
    std::vector<RangeEvent> out;
    for (const RangeEvent& e : events_) {
      if (e.type == RangeEvent::Type::kChange) out.push_back(e);
    }
    return out;
  }
  bool SawOutOfSync() const {
    for (const RangeEvent& e : events_) {
      if (e.type == RangeEvent::Type::kOutOfSync) return true;
    }
    return false;
  }
  Timestamp LastWatermark() const {
    Timestamp w = -1;
    for (const RangeEvent& e : events_) {
      if (e.type == RangeEvent::Type::kWatermark) w = e.ts;
    }
    return w;
  }

  ManualClock clock_;
  RangeOwnership ranges_;
  QueryMatcher matcher_;
  Changelog changelog_;
  query::Query query_;
  std::vector<RangeEvent> events_;
};

TEST_F(RtFixture, PrepareAssignsIncreasingMinTimestamps) {
  auto p1 = changelog_.Prepare("db", {Path("/docs/a")}, clock_.NowMicros() +
                                                            1'000'000);
  auto p2 = changelog_.Prepare("db", {Path("/docs/b")}, clock_.NowMicros() +
                                                            1'000'000);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_GT(p2->min_commit_ts, p1->min_commit_ts);
  EXPECT_GE(p1->min_commit_ts, clock_.NowMicros());
}

TEST_F(RtFixture, AcceptedMutationsReleasedInTimestampOrder) {
  Timestamp max_ts = clock_.NowMicros() + 1'000'000;
  auto p1 = changelog_.Prepare("db", {Path("/docs/a")}, max_ts);
  auto p2 = changelog_.Prepare("db", {Path("/docs/b")}, max_ts);
  ASSERT_TRUE(p1.ok() && p2.ok());
  // Accept out of order: the later prepare's (earlier unknown) commit first.
  Timestamp ts2 = p2->min_commit_ts + 10;
  Timestamp ts1 = p1->min_commit_ts + 5;  // ts1 < ts2
  changelog_.Accept(p2->token, WriteOutcome::kSuccess, ts2,
                    {MakeChange("/docs/b", 2)});
  // Nothing can be released yet: prepare 1 is outstanding with min < ts2.
  EXPECT_TRUE(ChangeEvents().empty());
  changelog_.Accept(p1->token, WriteOutcome::kSuccess, ts1,
                    {MakeChange("/docs/a", 1)});
  // Both become releasable; order must be ts1 then ts2.
  clock_.AdvanceBy(2'000'000);
  changelog_.Tick();
  auto changes = ChangeEvents();
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].ts, ts1);
  EXPECT_EQ(changes[1].ts, ts2);
}

TEST_F(RtFixture, FailedWritesAreDropped) {
  auto p = changelog_.Prepare("db", {Path("/docs/a")},
                              clock_.NowMicros() + 1'000'000);
  ASSERT_TRUE(p.ok());
  changelog_.Accept(p->token, WriteOutcome::kFailed, 0, {});
  clock_.AdvanceBy(2'000'000);
  changelog_.Tick();
  EXPECT_TRUE(ChangeEvents().empty());
  EXPECT_FALSE(SawOutOfSync());
}

TEST_F(RtFixture, UnknownOutcomeMarksRangeOutOfSync) {
  auto p = changelog_.Prepare("db", {Path("/docs/a")},
                              clock_.NowMicros() + 1'000'000);
  ASSERT_TRUE(p.ok());
  changelog_.Accept(p->token, WriteOutcome::kUnknown, 0, {});
  EXPECT_TRUE(SawOutOfSync());
  EXPECT_EQ(changelog_.out_of_sync_events(), 1);
}

TEST_F(RtFixture, ExpiredPrepareMarksRangeOutOfSync) {
  auto p = changelog_.Prepare("db", {Path("/docs/a")},
                              clock_.NowMicros() + 1'000'000);
  ASSERT_TRUE(p.ok());
  // The Accept never arrives; after max_ts + grace the range is reset.
  clock_.AdvanceBy(2'000'000);
  changelog_.Tick();
  EXPECT_TRUE(SawOutOfSync());
  // A late Accept for the expired prepare is ignored.
  changelog_.Accept(p->token, WriteOutcome::kSuccess, p->min_commit_ts + 1,
                    {MakeChange("/docs/a", 1)});
  EXPECT_TRUE(ChangeEvents().empty());
}

TEST_F(RtFixture, HeartbeatsAdvanceIdleWatermark) {
  changelog_.Tick();
  Timestamp w1 = LastWatermark();
  EXPECT_EQ(w1, clock_.NowMicros());
  clock_.AdvanceBy(5'000);
  changelog_.Tick();
  EXPECT_EQ(LastWatermark(), clock_.NowMicros());
}

TEST_F(RtFixture, WatermarkHeldBackByOutstandingPrepare) {
  auto p = changelog_.Prepare("db", {Path("/docs/a")},
                              clock_.NowMicros() + 10'000'000);
  ASSERT_TRUE(p.ok());
  clock_.AdvanceBy(5'000'000);
  changelog_.Tick();  // within grace; prepare still outstanding
  EXPECT_LT(LastWatermark(), p->min_commit_ts);
}

TEST_F(RtFixture, UnavailableFaultFailsPrepare) {
  changelog_.set_unavailable(true);
  auto p = changelog_.Prepare("db", {Path("/docs/a")},
                              clock_.NowMicros() + 1'000'000);
  EXPECT_EQ(p.status().code(), StatusCode::kUnavailable);
  // The shim arms the process-global fault registry; clear it so later
  // tests in this binary see a healthy Changelog.
  changelog_.set_unavailable(false);
  auto p2 = changelog_.Prepare("db", {Path("/docs/a")},
                               clock_.NowMicros() + 1'000'000);
  EXPECT_TRUE(p2.ok());
}

TEST_F(RtFixture, MatcherFiltersIrrelevantChanges) {
  // The subscription is for collection "docs"; a change in another
  // collection is matched against the query and dropped.
  auto p = changelog_.Prepare("db", {Path("/other/x")},
                              clock_.NowMicros() + 1'000'000);
  ASSERT_TRUE(p.ok());
  changelog_.Accept(p->token, WriteOutcome::kSuccess, p->min_commit_ts + 1,
                    {MakeChange("/other/x", 1)});
  clock_.AdvanceBy(2'000'000);
  changelog_.Tick();
  EXPECT_TRUE(ChangeEvents().empty());
  EXPECT_GT(matcher_.documents_examined(), 0);
  EXPECT_EQ(matcher_.documents_matched(), 0);
}

TEST_F(RtFixture, MatcherForwardsRemovals) {
  // A document that used to match but no longer does is still forwarded
  // (the frontend needs it to emit the removal).
  DocumentChange change;
  change.name = Path("/docs/gone");
  change.deleted = true;
  change.old_doc = Document(change.name, {{"v", Value::Integer(1)}});
  auto p = changelog_.Prepare("db", {change.name},
                              clock_.NowMicros() + 1'000'000);
  ASSERT_TRUE(p.ok());
  changelog_.Accept(p->token, WriteOutcome::kSuccess, p->min_commit_ts + 1,
                    {change});
  clock_.AdvanceBy(2'000'000);
  changelog_.Tick();
  ASSERT_EQ(ChangeEvents().size(), 1u);
  EXPECT_TRUE(ChangeEvents()[0].change.deleted);
}

TEST_F(RtFixture, MatcherIgnoresOtherDatabases) {
  auto p = changelog_.Prepare("other-db", {Path("/docs/a")},
                              clock_.NowMicros() + 1'000'000);
  ASSERT_TRUE(p.ok());
  changelog_.Accept(p->token, WriteOutcome::kSuccess, p->min_commit_ts + 1,
                    {MakeChange("/docs/a", 1)});
  clock_.AdvanceBy(2'000'000);
  changelog_.Tick();
  EXPECT_TRUE(ChangeEvents().empty());
}

TEST_F(RtFixture, UnsubscribeStopsDelivery) {
  matcher_.Unsubscribe(1);
  EXPECT_EQ(matcher_.subscription_count(), 0);
  auto p = changelog_.Prepare("db", {Path("/docs/a")},
                              clock_.NowMicros() + 1'000'000);
  changelog_.Accept(p->token, WriteOutcome::kSuccess, p->min_commit_ts + 1,
                    {MakeChange("/docs/a", 1)});
  clock_.AdvanceBy(2'000'000);
  changelog_.Tick();
  EXPECT_TRUE(events_.empty());
}

}  // namespace
}  // namespace firestore::rtcache
