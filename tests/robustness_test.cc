// Robustness and hardening tests: adversarial decode inputs must fail
// cleanly (never crash or over-read), MVCC garbage collection must preserve
// in-retention snapshots, and shared components must tolerate concurrency.

#include <gtest/gtest.h>

#include <thread>

#include "client/local_store.h"
#include "common/random.h"
#include "firestore/codec/document_codec.h"
#include "firestore/codec/ordered_code.h"
#include "firestore/codec/value_codec.h"
#include "firestore/index/catalog.h"
#include "firestore/rules/rules.h"
#include "tests/test_support.h"

namespace firestore {
namespace {

using model::Value;
using testing::Field;
using testing::Path;

// ---------------------------------------------------------------------------
// Decode fuzzing: random bytes through every parser.

class DecodeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecodeFuzzTest, RandomBytesNeverCrashParsers) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    size_t len = static_cast<size_t>(rng.Uniform(0, 40));
    std::string bytes;
    bytes.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Uniform(0, 255)));
    }
    {
      std::string_view view = bytes;
      Value out;
      (void)codec::ParseValueAsc(&view, &out);
    }
    {
      std::string_view view = bytes;
      Value out;
      (void)codec::ParseValueDesc(&view, &out);
    }
    {
      std::string_view view = bytes;
      model::ResourcePath out;
      (void)codec::ParseResourcePath(&view, &out);
    }
    {
      std::string_view view = bytes;
      std::string out;
      (void)codec::ParseBytes(&view, &out);
    }
    (void)codec::ParseDocument(bytes);
    (void)backend::TriggerEvent::Parse(bytes);
    (void)client::LocalStore::Parse(bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzzTest, ::testing::Values(1, 2, 3));

// Mutated valid encodings: flip bytes in real payloads; parsers must either
// reject or produce *some* value, never crash, and checksummed formats must
// reject.
TEST(DecodeFuzzTest, BitFlippedDocumentsHandled) {
  Rng rng(9);
  model::Document doc(Path("/c/d"), {});
  doc.SetField(Field("a"), Value::Integer(42));
  doc.SetField(Field("b"), Value::String("hello world"));
  doc.SetField(Field("c"),
               Value::FromArray({Value::Double(1.5), Value::Null()}));
  std::string bytes = codec::SerializeDocument(doc);
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutated = bytes;
    size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(mutated.size()) - 1));
    mutated[pos] ^= static_cast<char>(1 << rng.Uniform(0, 7));
    (void)codec::ParseDocument(mutated);  // must not crash
  }
}

// ---------------------------------------------------------------------------
// GC vs snapshot consistency.

class GcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GcPropertyTest, ReadsAtOrAfterHorizonUnaffectedByGc) {
  ManualClock clock(1'000'000);
  spanner::Database db(&clock);
  ASSERT_TRUE(db.CreateTable("T").ok());
  Rng rng(GetParam());
  // Random history over a few keys, remembering some snapshots.
  struct Snap {
    spanner::Timestamp ts;
    std::map<std::string, std::string> state;
  };
  std::vector<Snap> snaps;
  std::map<std::string, std::string> current;
  for (int step = 0; step < 150; ++step) {
    clock.AdvanceBy(rng.Uniform(1, 1000));
    std::string key = "k" + std::to_string(rng.Uniform(0, 5));
    auto txn = db.BeginTransaction();
    if (rng.Bernoulli(0.2)) {
      txn->Delete("T", key);
      current.erase(key);
    } else {
      std::string value = "v" + std::to_string(step);
      txn->Put("T", key, value);
      current[key] = value;
    }
    auto result = txn->Commit();
    ASSERT_TRUE(result.ok());
    if (rng.Bernoulli(0.2)) {
      snaps.push_back({result->commit_ts, current});
    }
  }
  // GC at a random horizon; snapshots at or after it must read identically.
  ASSERT_GT(snaps.size(), 2u);
  size_t cut = snaps.size() / 2;
  spanner::Timestamp horizon = snaps[cut].ts;
  db.GarbageCollect(horizon);
  for (size_t i = cut; i < snaps.size(); ++i) {
    for (const char* k : {"k0", "k1", "k2", "k3", "k4", "k5"}) {
      auto row = db.SnapshotRead("T", k, snaps[i].ts);
      ASSERT_TRUE(row.ok());
      auto expected = snaps[i].state.find(k);
      if (expected == snaps[i].state.end()) {
        EXPECT_FALSE(row->has_value()) << k << " at " << snaps[i].ts;
      } else {
        ASSERT_TRUE(row->has_value()) << k << " at " << snaps[i].ts;
        EXPECT_EQ(**row, expected->second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Catalog concurrency: lazy auto-index materialization must be race-free.

TEST(CatalogConcurrencyTest, ParallelAutoIndexGetsOneStableId) {
  index::IndexCatalog catalog;
  constexpr int kThreads = 8;
  std::vector<index::IndexId> ids(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        auto def = catalog.AutoIndex("col", Field("field"),
                                     index::SegmentKind::kAscending);
        FS_CHECK(def.has_value());
        ids[t] = def->index_id;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
  // Exactly one asc index exists.
  int asc_count = 0;
  for (const auto& def : catalog.AllIndexes()) {
    if (def.automatic &&
        def.segments[0].kind == index::SegmentKind::kAscending) {
      ++asc_count;
    }
  }
  EXPECT_EQ(asc_count, 1);
}

// ---------------------------------------------------------------------------
// Rules parser fuzz: garbage sources never crash, only error.

class RulesFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RulesFuzzTest, RandomSourcesNeverCrashParser) {
  Rng rng(GetParam());
  const std::string alphabet =
      "match allow read write if (){}/.;:=<>!&|'\"abc123 \n\t$*,";
  for (int iter = 0; iter < 500; ++iter) {
    size_t len = static_cast<size_t>(rng.Uniform(0, 120));
    std::string source;
    for (size_t i = 0; i < len; ++i) {
      source.push_back(
          alphabet[static_cast<size_t>(rng.Uniform(
              0, static_cast<int64_t>(alphabet.size()) - 1))]);
    }
    (void)rules::RuleSet::Parse(source);  // must not crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RulesFuzzTest, ::testing::Values(5, 6));

}  // namespace
}  // namespace firestore
