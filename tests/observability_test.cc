// Observability layer tests (docs/OBSERVABILITY.md):
//  - Timer percentiles stay within the histogram's documented error bound;
//  - metrics snapshots are byte-identical across two same-seed runs;
//  - a single update wrapped in a Trace produces one span tree covering the
//    service, backend, spanner, rtcache AND frontend layers, including the
//    asynchronous notification leg resumed across the Changelog hop;
//  - retry.attempts mirrors injected fault fires exactly, and give-ups are
//    counted on budget exhaustion;
//  - FirestoreService::DebugDump() exposes both metrics and fault points.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "backend/types.h"
#include "common/clock.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "firestore/model/document.h"
#include "firestore/query/query.h"
#include "service/service.h"
#include "tests/test_support.h"

namespace firestore {
namespace {

using backend::Mutation;
using model::Value;
using ::firestore::testing::Path;

constexpr char kDb[] = "projects/p/databases/obs";

TEST(MetricsTest, CounterGaugeAndLabels) {
  MetricRegistry::Global().ResetForTest();
  Counter& c = FS_METRIC_COUNTER("obs.test.counter");
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.value(), 5);
  // The macro returns the same registry entry at every evaluation.
  EXPECT_EQ(&FS_METRIC_COUNTER("obs.test.counter"), &c);

  FS_METRIC_GAUGE("obs.test.gauge").Set(7);
  FS_METRIC_GAUGE("obs.test.gauge").Add(-2);
  EXPECT_EQ(MetricRegistry::Global().GetGauge("obs.test.gauge").value(), 5);

  FS_METRIC_COUNTER_FOR("obs.test.labeled", "a").Increment();
  FS_METRIC_COUNTER_FOR("obs.test.labeled", "b").Increment(2);
  EXPECT_EQ(MetricRegistry::Global().GetCounter("obs.test.labeled", "a")
                .value(),
            1);
  EXPECT_EQ(MetricRegistry::Global().GetCounter("obs.test.labeled", "b")
                .value(),
            2);
}

TEST(MetricsTest, TimerPercentilesWithinHistogramErrorBound) {
  MetricRegistry::Global().ResetForTest();
  Timer& t = FS_METRIC_TIMER("obs.test.timer");
  for (int i = 1; i <= 1000; ++i) t.Record(i);
  EXPECT_EQ(t.count(), 1000);
  EXPECT_EQ(t.min(), 1);
  EXPECT_EQ(t.max(), 1000);
  // Logarithmic bucketing guarantees <2% relative error on percentiles.
  EXPECT_NEAR(t.Quantile(0.5), 500, 500 * 0.02 + 1);
  EXPECT_NEAR(t.Quantile(0.95), 950, 950 * 0.02 + 1);
  EXPECT_NEAR(t.Quantile(0.99), 990, 990 * 0.02 + 1);
  EXPECT_NEAR(t.Mean(), 500.5, 500.5 * 0.02 + 1);
}

TEST(MetricsTest, ScopedTimerUsesInjectedClock) {
  MetricRegistry::Global().ResetForTest();
  ManualClock clock(1000);
  Timer& t = FS_METRIC_TIMER("obs.test.scoped_timer");
  {
    ScopedTimer timer(t, &clock);
    clock.AdvanceBy(250);
  }
  EXPECT_EQ(t.count(), 1);
  EXPECT_EQ(t.max(), 250);
}

// One seeded pass over the service API; returns the full snapshot text.
std::string RunSeededWorkload() {
  MetricRegistry::Global().ResetForTest();
  ManualClock clock(1'000'000);
  service::FirestoreService service(&clock);
  FS_CHECK_OK(service.CreateDatabase(kDb));
  for (int i = 0; i < 8; ++i) {
    FS_CHECK(service
                 .Commit(kDb, {Mutation::Set(
                                  Path("/docs/d" + std::to_string(i)),
                                  {{"v", Value::Integer(i)}})})
                 .ok());
    clock.AdvanceBy(1000);
  }
  FS_CHECK(service.Get(kDb, Path("/docs/d3")).ok());
  query::Query q(model::ResourcePath(), "docs");
  FS_CHECK(service.RunQuery(kDb, q).ok());
  service.Pump();
  return MetricRegistry::Global().Snapshot().ToText();
}

TEST(MetricsTest, SnapshotIsDeterministicAcrossSameSeedRuns) {
  std::string first = RunSeededWorkload();
  std::string second = RunSeededWorkload();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("counter service.commits 8"), std::string::npos)
      << first;
}

TEST(MetricsTest, SnapshotRendersAllKindsSorted) {
  MetricRegistry::Global().ResetForTest();
  FS_METRIC_COUNTER_FOR("obs.test.labeled", "z").Increment();
  MetricsSnapshot snap = MetricRegistry::Global().Snapshot();
  ASSERT_FALSE(snap.samples.empty());
  for (size_t i = 1; i < snap.samples.size(); ++i) {
    const MetricSample& a = snap.samples[i - 1];
    const MetricSample& b = snap.samples[i];
    EXPECT_LE(std::tie(a.name, a.label), std::tie(b.name, b.label));
  }
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"obs.test.labeled\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"z\""), std::string::npos);
}

// The acceptance-criterion test: one YCSB-style update traced end to end.
// The trace must cover >= 4 modules and include the async notification leg
// (rtcache release -> match -> frontend delivery) with correct parenting.
TEST(TraceTest, SingleUpdateTraceCoversCommitAndNotificationPipeline) {
  ManualClock clock(1'000'000);
  service::FirestoreService service(&clock);
  FS_CHECK_OK(service.CreateDatabase(kDb));

  query::Query q(model::ResourcePath(), "games");
  auto conn = service.frontend().OpenPrivilegedConnection(kDb);
  int snapshots = 0;
  ASSERT_TRUE(service.frontend()
                  .Listen(conn, q,
                          [&snapshots](const frontend::QuerySnapshot&) {
                            ++snapshots;
                          })
                  .ok());
  EXPECT_EQ(snapshots, 1);  // initial snapshot
  clock.AdvanceBy(1'000'000);

  Trace trace(&clock, "ycsb.update");
  {
    TraceScope scope(trace);
    ASSERT_TRUE(service
                    .Commit(kDb, {Mutation::Set(Path("/games/final"),
                                                {{"v", Value::Integer(1)}})})
                    .ok());
  }
  // The committing scope is gone; the notification leg is delivered later
  // from the pump, resumed via the context stored on the DocumentChange.
  service.Pump();
  service.Pump();
  trace.Finish();
  ASSERT_EQ(snapshots, 2) << "listener should see the update";

  std::map<std::string, TraceSpan> by_name;
  for (const TraceSpan& span : trace.spans()) {
    EXPECT_NE(span.end, 0) << span.name << " left open";
    by_name[span.name] = span;
  }
  for (const char* name :
       {"ycsb.update", "service.commit", "backend.commit",
        "backend.commit.read_set", "backend.commit.prepare",
        "backend.commit.spanner", "backend.commit.accept", "spanner.commit",
        "rtcache.release", "rtcache.match", "frontend.deliver"}) {
    EXPECT_TRUE(by_name.count(name) != 0u) << name << " missing:\n"
                                           << trace.Dump();
  }

  // >= 4 modules, counted by span-name prefix.
  std::set<std::string> modules;
  for (const auto& [name, span] : by_name) {
    modules.insert(name.substr(0, name.find('.')));
  }
  EXPECT_GE(modules.size(), 5u) << trace.Dump();

  // Parenting: the synchronous commit chain...
  EXPECT_EQ(by_name["service.commit"].parent_id, by_name["ycsb.update"].id);
  EXPECT_EQ(by_name["backend.commit"].parent_id,
            by_name["service.commit"].id);
  EXPECT_EQ(by_name["spanner.commit"].parent_id,
            by_name["backend.commit.spanner"].id);
  // ...and the async legs re-parent at the span that captured the context
  // (step 4 of the commit runs inside backend.commit).
  EXPECT_EQ(by_name["rtcache.release"].parent_id,
            by_name["backend.commit"].id);
  EXPECT_EQ(by_name["rtcache.match"].parent_id,
            by_name["rtcache.release"].id);
  EXPECT_EQ(by_name["frontend.deliver"].parent_id,
            by_name["backend.commit"].id);

  std::string dump = trace.Dump();
  EXPECT_NE(dump.find("trace \"ycsb.update\""), std::string::npos);
  EXPECT_NE(dump.find("frontend.deliver"), std::string::npos);
}

TEST(TraceTest, SpansNoOpWithoutAmbientTrace) {
  ManualClock clock;
  // No TraceScope installed: FS_SPAN must be inert (and cheap).
  { FS_SPAN("obs.test.untraced"); }
  Trace trace(&clock, "outer");
  {
    TraceScope scope(trace);
    FS_SPAN("obs.test.traced");
  }
  trace.Finish();
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[1].name, "obs.test.traced");
}

int64_t CounterValue(const char* name, const char* label) {
  return MetricRegistry::Global().GetCounter(name, label).value();
}

// Chaos cross-check: every injected retryable failure is one counted retry
// attempt — the metric mirrors the fault registry exactly.
TEST(RetryMetricsTest, AttemptsMatchInjectedFaultFires) {
  ManualClock clock(1'000'000);
  service::FirestoreService service(&clock);
  FS_CHECK_OK(service.CreateDatabase(kDb));

  const int64_t attempts0 =
      CounterValue("retry.attempts", "backend.run_transaction");
  const int64_t give_ups0 =
      CounterValue("retry.give_ups", "backend.run_transaction");
  const int64_t fires0 = CounterValue("fault.fires", "committer.commit");
  {
    FaultConfig config;
    config.action = FaultAction::Fail(AbortedError("injected"));
    config.max_fires = 2;
    ScopedFault fault("committer.commit", config);
    auto result = service.RunTransaction(
        kDb, [](spanner::ReadWriteTransaction&)
                 -> StatusOr<std::vector<Mutation>> {
          return std::vector<Mutation>{Mutation::Set(
              Path("/retry/doc"), {{"v", Value::Integer(1)}})};
        });
    ASSERT_TRUE(result.ok()) << result.status().message();
  }
  EXPECT_EQ(CounterValue("fault.fires", "committer.commit") - fires0, 2);
  EXPECT_EQ(
      CounterValue("retry.attempts", "backend.run_transaction") - attempts0,
      2);
  EXPECT_EQ(
      CounterValue("retry.give_ups", "backend.run_transaction") - give_ups0,
      0);

  // Unbounded failure: the retry budget runs out and one give-up lands.
  const int64_t give_ups1 =
      CounterValue("retry.give_ups", "backend.run_transaction");
  {
    FaultConfig config;
    config.action = FaultAction::Fail(AbortedError("injected, always"));
    ScopedFault fault("committer.commit", config);
    auto result = service.RunTransaction(
        kDb, [](spanner::ReadWriteTransaction&)
                 -> StatusOr<std::vector<Mutation>> {
          return std::vector<Mutation>{Mutation::Set(
              Path("/retry/doc"), {{"v", Value::Integer(2)}})};
        });
    EXPECT_FALSE(result.ok());
  }
  EXPECT_EQ(
      CounterValue("retry.give_ups", "backend.run_transaction") - give_ups1,
      1);
}

TEST(DebugDumpTest, ExposesMetricsAndFaultPoints) {
  ManualClock clock(1'000'000);
  service::FirestoreService service(&clock);
  FS_CHECK_OK(service.CreateDatabase(kDb));
  FS_CHECK(service
               .Commit(kDb, {Mutation::Set(Path("/dump/doc"),
                                           {{"v", Value::Integer(1)}})})
               .ok());
  // Arm (probability 0, never fires) so the point is known to the registry.
  FaultConfig config;
  config.probability = 0.0;
  ScopedFault fault("committer.commit", config);
  std::string dump = service.DebugDump();
  EXPECT_NE(dump.find("== metrics =="), std::string::npos);
  EXPECT_NE(dump.find("service.commits"), std::string::npos);
  EXPECT_NE(dump.find("== fault points =="), std::string::npos);
  EXPECT_NE(dump.find("committer.commit"), std::string::npos) << dump;
}

}  // namespace
}  // namespace firestore
