#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/autoscaler.h"
#include "sim/cpu_server.h"
#include "sim/latency_model.h"
#include "sim/simulation.h"
#include "ycsb/ycsb.h"

namespace firestore::sim {
namespace {

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.After(30, [&] { order.push_back(3); });
  sim.After(10, [&] { order.push_back(1); });
  sim.After(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_processed(), 3);
}

TEST(SimulationTest, EqualTimesRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.After(10, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 10) sim.After(5, chain);
  };
  sim.After(5, chain);
  sim.Run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.now(), 50);
}

TEST(SimulationTest, RunUntilStopsEarly) {
  Simulation sim;
  int fired = 0;
  sim.After(10, [&] { ++fired; });
  sim.After(100, [&] { ++fired; });
  sim.Run(/*until=*/50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(CpuServerTest, SingleWorkerSerializesJobs) {
  Simulation sim;
  CpuServer server(&sim, {.workers = 1, .fair_share = false, .max_queue = 0});
  std::vector<Micros> completions;
  for (int i = 0; i < 3; ++i) {
    server.Submit("db", 100, [&] { completions.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<Micros>{100, 200, 300}));
  EXPECT_EQ(server.completed(), 3);
}

TEST(CpuServerTest, MultipleWorkersRunConcurrently) {
  Simulation sim;
  CpuServer server(&sim, {.workers = 3, .fair_share = false, .max_queue = 0});
  std::vector<Micros> completions;
  for (int i = 0; i < 3; ++i) {
    server.Submit("db", 100, [&] { completions.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<Micros>{100, 100, 100}));
}

TEST(CpuServerTest, FairShareInterleavesKeys) {
  Simulation sim;
  CpuServer server(&sim, {.workers = 1, .fair_share = true, .max_queue = 0});
  std::vector<std::string> order;
  // Key A floods 5 jobs first; key B submits 2. Fair scheduling alternates.
  for (int i = 0; i < 5; ++i) {
    server.Submit("A", 10, [&] { order.push_back("A"); });
  }
  for (int i = 0; i < 2; ++i) {
    server.Submit("B", 10, [&] { order.push_back("B"); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 7u);
  // B's two jobs complete within the first four slots despite arriving
  // after five A jobs.
  int b_done = 0;
  for (size_t i = 0; i < 4; ++i) {
    if (order[i] == "B") ++b_done;
  }
  EXPECT_EQ(b_done, 2);
}

TEST(CpuServerTest, FifoStarvesLateKey) {
  Simulation sim;
  CpuServer server(&sim, {.workers = 1, .fair_share = false, .max_queue = 0});
  std::vector<std::string> order;
  for (int i = 0; i < 5; ++i) {
    server.Submit("A", 10, [&] { order.push_back("A"); });
  }
  server.Submit("B", 10, [&] { order.push_back("B"); });
  sim.Run();
  EXPECT_EQ(order.back(), "B");  // B waits behind the whole A backlog
}

TEST(CpuServerTest, LoadSheddingCapsQueue) {
  Simulation sim;
  CpuServer server(&sim, {.workers = 1, .fair_share = false, .max_queue = 2});
  int accepted = 0;
  for (int i = 0; i < 5; ++i) {
    if (server.Submit("db", 10, nullptr)) ++accepted;
  }
  // One dispatched immediately + two queued.
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(server.shed(), 2);
  sim.Run();
}

TEST(CpuServerTest, BatchJobsYieldToLatencySensitive) {
  Simulation sim;
  CpuServer server(&sim, {.workers = 1, .fair_share = false, .max_queue = 0});
  std::vector<std::string> order;
  // A big backlog of tagged batch work arrives first...
  for (int i = 0; i < 10; ++i) {
    server.Submit("db", 10, [&] { order.push_back("batch"); },
                  /*batch=*/true);
  }
  // ...then a latency-sensitive request.
  server.Submit("db", 10, [&] { order.push_back("user"); });
  sim.Run();
  ASSERT_EQ(order.size(), 11u);
  // The user job ran right after the batch job already in service.
  EXPECT_EQ(order[1], "user");
}

TEST(CpuServerTest, BatchBandIsFairAcrossKeysToo) {
  Simulation sim;
  CpuServer server(&sim, {.workers = 1, .fair_share = true, .max_queue = 0});
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) {
    server.Submit("A", 10, [&] { order.push_back("A"); }, true);
  }
  server.Submit("B", 10, [&] { order.push_back("B"); }, true);
  sim.Run();
  ASSERT_EQ(order.size(), 5u);
  // B's single batch job is not starved behind all of A's.
  int b_pos = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == "B") b_pos = static_cast<int>(i);
  }
  EXPECT_LE(b_pos, 2);
}

TEST(AutoscalerTest, ScalesUpUnderBacklog) {
  Simulation sim;
  CpuServer server(&sim, {.workers = 1, .fair_share = false, .max_queue = 0});
  Autoscaler::Options options;
  options.interval = 1000;
  options.samples_before_scale = 2;
  Autoscaler scaler(&sim, &server, options);
  scaler.Start();
  // Sustained overload: 1 job per 100us, each costing 200us.
  std::function<void()> load = [&] {
    server.Submit("db", 200, nullptr);
    if (sim.now() < 20'000) sim.After(100, load);
  };
  sim.After(0, load);
  sim.Run(5'000);
  EXPECT_GT(server.workers(), 1);  // scaled up under sustained backlog
  EXPECT_GE(scaler.scale_ups(), 1);
  // After the load stops, sustained idleness scales back down.
  sim.Run(60'000);
  EXPECT_EQ(server.workers(), 1);
  EXPECT_GE(scaler.scale_downs(), 1);
}

TEST(LatencyModelTest, MultiRegionSlowerThanRegional) {
  Rng rng(1);
  LatencyModel multi({.multi_region = true});
  LatencyModel::Options regional_options;
  regional_options.multi_region = false;
  LatencyModel regional(regional_options);
  double multi_sum = 0, regional_sum = 0;
  for (int i = 0; i < 200; ++i) {
    multi_sum += static_cast<double>(multi.SpannerCommit(rng, 1, 900, 4));
    regional_sum +=
        static_cast<double>(regional.SpannerCommit(rng, 1, 900, 4));
  }
  EXPECT_GT(multi_sum, regional_sum * 2);
}

TEST(LatencyModelTest, CommitGrowsWithWork) {
  Rng rng(2);
  LatencyModel model;
  auto avg = [&](int participants, int64_t bytes, int64_t entries) {
    double sum = 0;
    for (int i = 0; i < 100; ++i) {
      sum += static_cast<double>(
          model.SpannerCommit(rng, participants, bytes, entries));
    }
    return sum / 100;
  };
  EXPECT_GT(avg(4, 900, 4), avg(1, 900, 4));
  EXPECT_GT(avg(1, 900'000, 4), avg(1, 900, 4));
  EXPECT_GT(avg(1, 900, 1000), avg(1, 900, 4));
}

// ---------------------------------------------------------------------------
// YCSB runner smoke test

TEST(YcsbTest, WorkloadMixesMatchSpec) {
  ycsb::WorkloadGenerator gen(ycsb::WorkloadB(100), 7);
  int reads = 0;
  for (int i = 0; i < 2000; ++i) {
    if (gen.NextOp() == ycsb::OpType::kRead) ++reads;
  }
  EXPECT_NEAR(reads / 2000.0, 0.95, 0.03);
  model::Map v = gen.MakeValue();
  EXPECT_EQ(v.at("field0").string_value().size(), 900u);
}

TEST(YcsbTest, RunLevelProducesSaneLatencies) {
  ycsb::YcsbRunner::Options options;
  options.measure_duration = 2'000'000;
  options.warmup_duration = 500'000;
  ycsb::YcsbRunner runner(ycsb::WorkloadA(/*records=*/200), options, 11);
  ycsb::RunResult result = runner.RunLevel(/*target_qps=*/200);
  EXPECT_NEAR(result.achieved_qps, 200, 60);
  EXPECT_GT(result.read_latency.count(), 50u);
  EXPECT_GT(result.update_latency.count(), 50u);
  // Multi-region: updates pay the commit quorum; reads are cheaper.
  EXPECT_GT(result.update_latency.Quantile(0.5),
            result.read_latency.Quantile(0.5));
  // Latencies are in a plausible band (ms scale, not zero, not seconds).
  EXPECT_GT(result.read_latency.Quantile(0.5), 1'000);
  EXPECT_LT(result.read_latency.Quantile(0.99), 1'000'000);
}

TEST(YcsbTest, RunsAreDeterministicGivenSeed) {
  ycsb::YcsbRunner::Options options;
  options.measure_duration = 1'000'000;
  options.warmup_duration = 200'000;
  ycsb::YcsbRunner a(ycsb::WorkloadA(100), options, 31);
  ycsb::YcsbRunner b(ycsb::WorkloadA(100), options, 31);
  ycsb::RunResult ra = a.RunLevel(100);
  ycsb::RunResult rb = b.RunLevel(100);
  EXPECT_EQ(ra.achieved_qps, rb.achieved_qps);
  EXPECT_EQ(ra.read_latency.count(), rb.read_latency.count());
  EXPECT_EQ(ra.read_latency.Quantile(0.99), rb.read_latency.Quantile(0.99));
  EXPECT_EQ(ra.update_latency.Quantile(0.5),
            rb.update_latency.Quantile(0.5));
}

}  // namespace
}  // namespace firestore::sim
