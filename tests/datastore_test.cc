// Tests of the Datastore API sibling (paper §II): entities over the same
// database as Firestore documents, plus the planner A/B harness (§VI).

#include <gtest/gtest.h>

#include "common/random.h"
#include "firestore/query/ab_compare.h"
#include "firestore/query/row_reader.h"
#include "service/datastore_api.h"
#include "tests/test_support.h"

namespace firestore::datastore {
namespace {

using backend::Mutation;
using model::Map;
using model::Value;
using query::Operator;
using query::Query;
using testing::Field;
using testing::Path;

constexpr char kDb[] = "projects/p/databases/d";

class DatastoreTest : public ::testing::Test {
 protected:
  DatastoreTest()
      : clock_(1'000'000'000), service_(&clock_), client_(&service_, kDb) {
    FS_CHECK_OK(service_.CreateDatabase(kDb));
  }

  ManualClock clock_;
  service::FirestoreService service_;
  DatastoreClient client_;
};

TEST_F(DatastoreTest, KeysMapToDocumentPaths) {
  Key key = Key::Of("Task", "t1");
  EXPECT_EQ(key.ToResourcePath().CanonicalString(), "/Task/t1");
  Key child = key.Child("Subtask", "s1");
  EXPECT_EQ(child.ToResourcePath().CanonicalString(), "/Task/t1/Subtask/s1");
  auto back = Key::FromResourcePath(Path("/Task/t1/Subtask/s1"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->path.size(), 2u);
  EXPECT_EQ(back->path[1].first, "Subtask");
  EXPECT_FALSE(Key::FromResourcePath(Path("/Task")).ok());
}

TEST_F(DatastoreTest, PutLookupDelete) {
  Entity task;
  task.key = Key::Of("Task", "t1");
  task.properties["done"] = Value::Boolean(false);
  ASSERT_TRUE(client_.Put(task).ok());
  auto found = client_.Lookup(task.key);
  ASSERT_TRUE(found.ok());
  ASSERT_TRUE(found->has_value());
  EXPECT_EQ((*found)->properties.at("done").boolean_value(), false);
  ASSERT_TRUE(client_.Delete(task.key).ok());
  EXPECT_FALSE(client_.Lookup(task.key)->has_value());
}

TEST_F(DatastoreTest, BothApisShareOneDatabase) {
  // Write through Datastore, read through Firestore — and vice versa
  // (paper §II: "both APIs can be used to read from and write to the same
  // database").
  Entity task;
  task.key = Key::Of("Task", "shared");
  task.properties["owner"] = Value::String("ada");
  ASSERT_TRUE(client_.Put(task).ok());
  auto as_doc = service_.Get(kDb, Path("/Task/shared"));
  ASSERT_TRUE(as_doc.ok() && as_doc->has_value());
  EXPECT_EQ((*as_doc)->GetField(Field("owner"))->string_value(), "ada");

  ASSERT_TRUE(service_
                  .Commit(kDb, {Mutation::Merge(
                                   Path("/Task/shared"),
                                   {{"done", Value::Boolean(true)}})})
                  .ok());
  auto as_entity = client_.Lookup(Key::Of("Task", "shared"));
  ASSERT_TRUE(as_entity.ok() && as_entity->has_value());
  EXPECT_TRUE((*as_entity)->properties.at("done").boolean_value());
  EXPECT_EQ((*as_entity)->properties.at("owner").string_value(), "ada");
}

TEST_F(DatastoreTest, KindQueriesUseTheSameEngine) {
  for (int i = 0; i < 6; ++i) {
    Entity e;
    e.key = Key::Of("Task", "t" + std::to_string(i));
    e.properties["priority"] = Value::Integer(i % 3);
    ASSERT_TRUE(client_.Put(e).ok());
  }
  Query q(model::ResourcePath(), "Task");
  q.Where(Field("priority"), Operator::kEqual, Value::Integer(2));
  auto results = client_.RunQuery(q);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 2u);
}

TEST_F(DatastoreTest, AncestorQueries) {
  Key parent = Key::Of("Project", "apollo");
  Entity p;
  p.key = parent;
  ASSERT_TRUE(client_.Put(p).ok());
  for (int i = 0; i < 3; ++i) {
    Entity e;
    e.key = parent.Child("Task", "t" + std::to_string(i));
    e.properties["n"] = Value::Integer(i);
    ASSERT_TRUE(client_.Put(e).ok());
  }
  // A Task under a different project must not leak in.
  Entity other;
  other.key = Key::Of("Project", "gemini").Child("Task", "tx");
  ASSERT_TRUE(client_.Put(other).ok());
  auto tasks = client_.AncestorQuery(parent, "Task");
  ASSERT_TRUE(tasks.ok());
  EXPECT_EQ(tasks->size(), 3u);
}

TEST_F(DatastoreTest, EventualReadsServeRecentSnapshot) {
  Entity e;
  e.key = Key::Of("Task", "t");
  e.properties["v"] = Value::Integer(1);
  ASSERT_TRUE(client_.Put(e).ok());
  auto eventual = client_.Lookup(e.key, ReadConsistency::kEventual);
  ASSERT_TRUE(eventual.ok());
  ASSERT_TRUE(eventual->has_value());
  EXPECT_EQ((*eventual)->properties.at("v").integer_value(), 1);
}

TEST_F(DatastoreTest, TransactionsWork) {
  Entity e;
  e.key = Key::Of("Counter", "c");
  e.properties["n"] = Value::Integer(5);
  ASSERT_TRUE(client_.Put(e).ok());
  auto result = client_.RunTransaction(
      [&](spanner::ReadWriteTransaction& txn)
          -> StatusOr<std::vector<Mutation>> {
        (void)txn;
        return std::vector<Mutation>{Mutation::Merge(
            Path("/Counter/c"), {{"n", Value::Integer(6)}})};
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*client_.Lookup(e.key))->properties.at("n").integer_value(), 6);
}

// ---------------------------------------------------------------------------
// Planner A/B harness (§VI)

class ABCompareTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ABCompareTest, PlannerAgreesWithReferenceOnRandomQueries) {
  ManualClock clock(1'000'000'000);
  service::FirestoreService service(&clock);
  FS_CHECK_OK(service.CreateDatabase(kDb));
  Rng rng(GetParam());
  const std::vector<std::string> kinds = {"a", "b"};
  for (int i = 0; i < 50; ++i) {
    Map fields;
    fields["x"] = Value::Integer(rng.Uniform(0, 9));
    if (rng.Bernoulli(0.7)) fields["y"] = Value::Integer(rng.Uniform(0, 9));
    if (rng.Bernoulli(0.3)) fields["tag"] = Value::String("hot");
    std::string path = "/" + kinds[rng.Uniform(0, 1)] + "/d" +
                       std::to_string(i);
    FS_CHECK(service
                 .Commit(kDb, {Mutation::Set(Path(path), std::move(fields))})
                 .ok());
  }
  query::SnapshotRowReader reader(&service.spanner(),
                                  service.spanner().StrongReadTimestamp());
  int compared = 0;
  for (int iter = 0; iter < 30; ++iter) {
    Query q(model::ResourcePath(), kinds[rng.Uniform(0, 1)]);
    if (rng.Bernoulli(0.5)) {
      q.Where(Field("x"), Operator::kEqual,
              Value::Integer(rng.Uniform(0, 9)));
    }
    if (rng.Bernoulli(0.4)) {
      q.Where(Field("y"),
              rng.Bernoulli(0.5) ? Operator::kGreaterThan
                                 : Operator::kLessThanOrEqual,
              Value::Integer(rng.Uniform(0, 9)));
    }
    if (rng.Bernoulli(0.3)) q.Limit(rng.Uniform(1, 10));
    if (rng.Bernoulli(0.2)) q.Offset(rng.Uniform(0, 5));
    if (rng.Bernoulli(0.2)) q.Project({Field("x")});
    auto report = query::ABCompareQuery(*service.catalog(kDb), reader, kDb,
                                        q);
    if (!report.ok()) {
      // Only a missing composite index is acceptable.
      ASSERT_EQ(report.status().code(), StatusCode::kFailedPrecondition)
          << q.CanonicalString();
      continue;
    }
    ++compared;
    EXPECT_TRUE(report->match)
        << q.CanonicalString() << " plan=" << report->plan_description
        << "\n  " << (report->divergences.empty()
                          ? ""
                          : report->divergences[0]);
  }
  EXPECT_GT(compared, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ABCompareTest,
                         ::testing::Values(3, 6, 9, 12));

}  // namespace
}  // namespace firestore::datastore
