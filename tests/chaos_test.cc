// End-to-end chaos suite (docs/ROBUSTNESS.md): a seeded multi-threaded
// workload — writers, real-time listeners, tablet splits, tenant churn —
// runs while a fault scheduler arms and disarms points from the global
// fault registry. Afterwards all faults are cleared, the pipeline drains,
// and the invariants that must survive any fault schedule are checked:
//
//  - no acknowledged write is lost: reading at its commit timestamp
//    returns exactly the acknowledged value;
//  - no write is duplicated: a counter maintained by read-modify-write
//    transactions ends within [acked, acked + unknown-outcome] increments;
//  - every delivered listener snapshot is timestamp-consistent: re-running
//    the query at snapshot_ts reproduces the delivered result exactly, and
//    the delta stream replays to the full result;
//  - after faults clear, listeners reconverge to the authoritative state
//    and the lock table is drained.
//
// Each scenario is parameterized by seed (fault schedule + retry jitter).
// CI runs the suite in plain, ASan and TSan builds; CHAOS_SEED=<n> runs one
// extra seed, and every assertion carries the seed for reproduction.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "backend/types.h"
#include "common/clock.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/thread_annotations.h"
#include "firestore/codec/document_codec.h"
#include "firestore/index/layout.h"
#include "firestore/model/document.h"
#include "firestore/query/query.h"
#include "service/service.h"
#include "tests/test_support.h"

namespace firestore {
namespace {

using backend::Mutation;
using model::Document;
using model::Map;
using model::Value;
using query::Query;
using ::firestore::testing::Field;
using ::firestore::testing::Path;

constexpr char kDb[] = "projects/p/databases/chaos";
constexpr int kSetWriters = 2;
constexpr int kOpsPerSetWriter = 24;
constexpr int kTxnWriters = 2;
constexpr int kOpsPerTxnWriter = 12;
constexpr int kKeys = 12;  // shared pool; contention is the point

std::string KeyPath(int i) { return "/chaos/k" + std::to_string(i); }

// ---------------------------------------------------------------------------
// Write ledger: what the application believes happened.

struct AckedWrite {
  std::string path;
  int64_t value = 0;
  spanner::Timestamp commit_ts = 0;
};

struct WriteLedger {
  Mutex mu;
  std::vector<AckedWrite> acked FS_GUARDED_BY(mu);
  // Writes whose commit outcome was reported unknown: they may or may not
  // be durable, but nothing else may appear under these keys.
  std::map<std::string, std::set<int64_t>> unknown FS_GUARDED_BY(mu);
  int txn_acked FS_GUARDED_BY(mu) = 0;
  int txn_unknown FS_GUARDED_BY(mu) = 0;

  void Ack(std::string path, int64_t value, spanner::Timestamp ts) {
    MutexLock lock(&mu);
    acked.push_back({std::move(path), value, ts});
  }
  void Unknown(const std::string& path, int64_t value) {
    MutexLock lock(&mu);
    unknown[path].insert(value);
  }
};

// ---------------------------------------------------------------------------
// Listener recorder: replays the delta stream against a local model and
// keeps every delivered (snapshot_ts, result) pair for later MVCC checks.

struct HistoryEntry {
  spanner::Timestamp ts = 0;
  bool is_reset = false;
  std::map<std::string, int64_t> docs;
};

struct ChaosRecorder {
  Mutex mu;
  std::map<std::string, int64_t> model FS_GUARDED_BY(mu);
  std::vector<HistoryEntry> history FS_GUARDED_BY(mu);
  std::vector<std::string> violations FS_GUARDED_BY(mu);
  spanner::Timestamp last_ts FS_GUARDED_BY(mu) = 0;
  bool alive FS_GUARDED_BY(mu) = false;
  int terminal_errors FS_GUARDED_BY(mu) = 0;

  frontend::SnapshotCallback Callback() {
    return [this](const frontend::QuerySnapshot& s) { OnSnapshot(s); };
  }

  void OnSnapshot(const frontend::QuerySnapshot& s) {
    MutexLock lock(&mu);
    if (!s.error.ok()) {
      // Out-of-sync recovery exhausted its budget; the stream is dead. The
      // supervisor opens a fresh one, which starts a new timestamp domain.
      alive = false;
      ++terminal_errors;
      last_ts = 0;
      return;
    }
    if (s.snapshot_ts < last_ts) {
      violations.push_back("snapshot_ts regressed: " +
                           std::to_string(s.snapshot_ts) + " < " +
                           std::to_string(last_ts));
    }
    last_ts = s.snapshot_ts;
    if (s.is_reset) {
      model.clear();
      for (const Document& doc : s.documents) {
        model[doc.name().CanonicalString()] =
            doc.GetField(Field("v"))->integer_value();
      }
    } else {
      for (const frontend::SnapshotChange& change : s.changes) {
        std::string name = change.doc.name().CanonicalString();
        if (change.kind == frontend::ChangeKind::kRemoved) {
          model.erase(name);
        } else {
          model[name] = change.doc.GetField(Field("v"))->integer_value();
        }
      }
    }
    // The replayed delta stream must reproduce the full result.
    std::map<std::string, int64_t> full;
    for (const Document& doc : s.documents) {
      full[doc.name().CanonicalString()] =
          doc.GetField(Field("v"))->integer_value();
    }
    if (full != model) {
      violations.push_back("delta replay diverged from full result at ts=" +
                           std::to_string(s.snapshot_ts));
      model = full;  // resync so one divergence reports once
    }
    history.push_back({s.snapshot_ts, s.is_reset, std::move(full)});
  }
};

// ---------------------------------------------------------------------------
// Fault schedule: the catalog of points the scheduler rotates through.

struct FaultChoice {
  const char* point;
  FaultAction action;
  double probability;
};

std::vector<FaultChoice> FaultMenu() {
  return {
      {"spanner.txn.read", FaultAction::Fail(UnavailableError("chaos")), 0.2},
      {"spanner.txn.read", FaultAction::Latency(300), 0.4},
      {"spanner.txn.commit", FaultAction::Fail(UnavailableError("chaos")),
       0.2},
      {"spanner.snapshot.read", FaultAction::Fail(UnavailableError("chaos")),
       0.2},
      {"spanner.snapshot.scan", FaultAction::Fail(UnavailableError("chaos")),
       0.2},
      {"spanner.lock.acquire", FaultAction::Fail(UnavailableError("chaos")),
       0.1},
      {"spanner.queue.push.drop", FaultAction::Drop(), 0.2},
      {"rtcache.prepare", FaultAction::Fail(UnavailableError("chaos")), 0.2},
      {"rtcache.accept.drop", FaultAction::Drop(), 0.2},
      {"committer.prepare", FaultAction::Fail(UnavailableError("chaos")),
       0.2},
      {"committer.commit", FaultAction::Fail(AbortedError("chaos")), 0.2},
      {"committer.outcome_unknown", FaultAction::Drop(), 0.1},
      {"service.commit", FaultAction::Fail(UnavailableError("chaos")), 0.2},
      {"service.run_transaction",
       FaultAction::Fail(UnavailableError("chaos")), 0.2},
      {"service.query", FaultAction::Fail(UnavailableError("chaos")), 0.15},
      {"frontend.initial_snapshot",
       FaultAction::Fail(UnavailableError("chaos")), 0.3},
  };
}

// ---------------------------------------------------------------------------
// The scenario.

void RunChaos(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  LockOrderChecker::SetEnabled(true);

  ManualClock clock(1'000'000'000);
  service::FirestoreService::Options options;
  options.frontend_options.reset_retry.max_attempts = 6;
  options.frontend_options.reset_retry.initial_backoff = 5'000;
  options.frontend_options.reset_retry.max_backoff = 100'000;
  options.frontend_options.retry_seed = seed;
  service::FirestoreService service(&clock, options);
  FS_CHECK_OK(service.CreateDatabase(kDb));
  service.spanner().set_lock_timeout_ms(50);
  FaultRegistry::Global().SetLatencyClock(&clock);

  // Seed every key so read-modify-write bodies always find a row and the
  // initial listener snapshot is non-trivial.
  for (int i = 0; i < kKeys; ++i) {
    FS_CHECK(service
                 .Commit(kDb, {Mutation::Set(Path(KeyPath(i)),
                                             {{"v", Value::Integer(0)}})})
                 .ok());
  }
  FS_CHECK(service
               .Commit(kDb, {Mutation::Set(Path("/chaos/counter"),
                                           {{"v", Value::Integer(0)}})})
               .ok());

  WriteLedger ledger;
  ChaosRecorder recorder;
  Query chaos_query(model::ResourcePath(), "chaos");

  auto listen = [&]() -> bool {
    auto conn = service.frontend().OpenPrivilegedConnection(kDb);
    auto target =
        service.frontend().Listen(conn, chaos_query, recorder.Callback());
    if (!target.ok()) {
      service.frontend().CloseConnection(conn);
      return false;
    }
    MutexLock lock(&recorder.mu);
    recorder.alive = true;
    return true;
  };
  ASSERT_TRUE(listen());  // no faults armed yet: must succeed

  std::atomic<bool> writers_done{false};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> next_value{1};
  std::vector<std::thread> threads;

  // Pump: drives Changelog -> Matcher -> Frontend and the maintenance loop
  // while virtual time advances.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      clock.AdvanceBy(3'000);
      service.Pump();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Fault scheduler: arms a random subset of the menu, lets the workload
  // run into it, disarms, repeats. Every decision derives from the seed.
  // Writers hold their ops until the first window is armed — under
  // sanitizer slowdown the scheduler thread can otherwise be starved past
  // the whole workload, leaving a fault-free (vacuous) run.
  std::atomic<bool> first_armed{false};
  auto total_fault_fires = [] {
    int64_t total = 0;
    for (const FaultPointStats& p : FaultRegistry::Global().KnownPoints()) {
      total += p.total_fires;
    }
    return total;
  };
  threads.emplace_back([&] {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    std::vector<FaultChoice> menu = FaultMenu();
    bool first_window = true;
    while (!writers_done.load(std::memory_order_relaxed)) {
      std::vector<const char*> armed;
      int picks = static_cast<int>(rng.Uniform(1, 3));
      for (int i = 0; i < picks; ++i) {
        const FaultChoice& choice = menu[static_cast<size_t>(
            rng.Uniform(0, static_cast<int64_t>(menu.size()) - 1))];
        FaultConfig config;
        config.probability = choice.probability;
        config.seed = rng.Uniform(1, 1'000'000);
        config.action = choice.action;
        FaultRegistry::Global().Arm(choice.point, config);
        armed.push_back(choice.point);
      }
      if (first_window) {
        // Guarantee the schedule is non-vacuous: the first window also
        // arms a benign latency point every writer hits on entry, at
        // probability 1, and holds until a fire is recorded — however
        // slowly the workload threads get scheduled under a sanitizer.
        FaultConfig config;
        config.probability = 1.0;
        config.seed = rng.Uniform(1, 1'000'000);
        config.action = FaultAction::Latency(300);
        FaultRegistry::Global().Arm("service.commit", config);
        armed.push_back("service.commit");
      }
      first_armed.store(true, std::memory_order_release);
      if (first_window) {
        first_window = false;
        for (int i = 0; i < 20'000 && total_fault_fires() == 0 &&
                        !writers_done.load(std::memory_order_relaxed);
             ++i) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      } else {
        std::this_thread::sleep_for(
            std::chrono::microseconds(rng.Uniform(500, 2'000)));
      }
      for (const char* point : armed) {
        FaultRegistry::Global().Disarm(point);
      }
      // Occasional healthy window so the pipeline can make progress.
      if (rng.Uniform(0, 3) == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
    FaultRegistry::Global().DisarmAll();
  });

  // Blind writers: last-write-wins Sets over the shared key pool, each
  // wrapped in the unified retry policy.
  auto await_first_arm = [&] {
    for (int i = 0; i < 20'000 && !first_armed.load(std::memory_order_acquire);
         ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  };

  for (int w = 0; w < kSetWriters; ++w) {
    threads.emplace_back([&, w] {
      await_first_arm();
      Rng rng(seed + static_cast<uint64_t>(w) * 7919);
      RetryPolicy policy;
      policy.max_attempts = 6;
      policy.initial_backoff = 2'000;
      policy.max_backoff = 50'000;
      for (int i = 0; i < kOpsPerSetWriter; ++i) {
        std::string path = KeyPath(static_cast<int>(rng.Uniform(0, kKeys - 1)));
        int64_t value = next_value.fetch_add(1);
        RetryState retry(policy, &clock, seed ^ rng.Uniform(1, 1 << 30));
        while (true) {
          auto result = service.Commit(
              kDb, {Mutation::Set(Path(path), {{"v", Value::Integer(value)}})});
          if (result.ok()) {
            ledger.Ack(path, value, result->commit_ts);
            break;
          }
          if (result.status().message().find("outcome unknown") !=
              std::string::npos) {
            ledger.Unknown(path, value);
            break;
          }
          Micros delay = 0;
          if (!retry.ShouldRetryWrite(result.status(), &delay)) {
            break;  // definitively failed: nothing durable
          }
          clock.AdvanceBy(std::min<Micros>(delay, 20'000));
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  // Transactional writers: contended read-modify-write increments of one
  // counter document (the committer's own retry loop handles wound-wait
  // aborts and lock-wait timeouts).
  for (int w = 0; w < kTxnWriters; ++w) {
    threads.emplace_back([&, w] {
      await_first_arm();
      for (int i = 0; i < kOpsPerTxnWriter; ++i) {
        int64_t written = 0;
        auto result = service.RunTransaction(
            kDb,
            [&](spanner::ReadWriteTransaction& txn)
                -> StatusOr<std::vector<Mutation>> {
              ASSIGN_OR_RETURN(
                  spanner::RowValue row,
                  txn.Read(index::kEntitiesTable,
                           index::EntityKey(kDb, Path("/chaos/counter")),
                           spanner::LockMode::kExclusive));
              FS_CHECK(row.has_value());
              ASSIGN_OR_RETURN(Document doc, codec::ParseDocument(*row));
              written = doc.GetField(Field("v"))->integer_value() + 1;
              return std::vector<Mutation>{Mutation::Merge(
                  Path("/chaos/counter"), {{"v", Value::Integer(written)}})};
            });
        MutexLock lock(&ledger.mu);
        if (result.ok()) {
          ledger.acked.push_back({"/chaos/counter", written,
                                  result->commit_ts});
          ++ledger.txn_acked;
        } else if (result.status().message().find("outcome unknown") !=
                   std::string::npos) {
          ++ledger.txn_unknown;
        }
        // Any other failure aborted before applying: not durable.
      }
    });
  }

  // Tablet splits underneath the running workload.
  threads.emplace_back([&] {
    while (!writers_done.load(std::memory_order_relaxed)) {
      service.spanner().RunLoadSplitting(/*load_threshold=*/4);
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // Tenant churn: create, use, delete. Faults may fail any step; the data
  // plane must stay consistent for everyone else.
  threads.emplace_back([&] {
    int generation = 0;
    while (!writers_done.load(std::memory_order_relaxed)) {
      std::string db =
          "projects/churn/databases/g" + std::to_string(generation++);
      FS_CHECK_OK(service.CreateDatabase(db));
      (void)service.Commit(
          db, {Mutation::Set(Path("/t/x"), {{"v", Value::Integer(1)}})});
      (void)service.RunQuery(db, Query(model::ResourcePath(), "t"));
      (void)service.DeleteDatabase(db);
      std::this_thread::sleep_for(std::chrono::microseconds(700));
    }
  });

  // Listener supervisor: when out-of-sync recovery gives up and delivers a
  // terminal error, open a fresh stream (which may itself fail under fault
  // and is then retried here).
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      bool alive;
      {
        MutexLock lock(&recorder.mu);
        alive = recorder.alive;
      }
      if (!alive) (void)listen();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // Writer threads are threads[2 + 1] .. — join them, then wind down.
  const size_t first_writer = 2;
  const size_t num_writers = kSetWriters + kTxnWriters;
  for (size_t i = first_writer; i < first_writer + num_writers; ++i) {
    threads[i].join();
  }
  writers_done.store(true);
  stop.store(true);
  for (size_t i = 0; i < threads.size(); ++i) {
    if (i < first_writer || i >= first_writer + num_writers) {
      threads[i].join();
    }
  }

  // -- Faults over; drain and verify. --
  FaultRegistry::Global().DisarmAll();
  {
    MutexLock lock(&recorder.mu);
    if (!recorder.alive) recorder.last_ts = 0;
  }
  for (int i = 0; i < 40; ++i) {
    bool alive;
    {
      MutexLock lock(&recorder.mu);
      alive = recorder.alive;
    }
    if (alive) break;
    ASSERT_LT(i, 39) << "listener failed to re-attach with faults cleared";
    (void)listen();
  }
  // A dropped Accept only surfaces as out-of-sync once its prepare expires
  // (max_commit_margin + accept_grace = 2.5s virtual); drain well past it.
  for (int i = 0; i < 500; ++i) {
    clock.AdvanceBy(10'000);
    service.Pump();
    service.Pump();
  }

  // Invariant 1: every acknowledged write is durable at its commit
  // timestamp with exactly the acknowledged value.
  std::vector<AckedWrite> acked;
  std::map<std::string, std::set<int64_t>> unknown;
  int txn_acked, txn_unknown;
  {
    MutexLock lock(&ledger.mu);
    acked = ledger.acked;
    unknown = ledger.unknown;
    txn_acked = ledger.txn_acked;
    txn_unknown = ledger.txn_unknown;
  }
  EXPECT_FALSE(acked.empty()) << "chaos schedule failed every single write";
  for (const AckedWrite& w : acked) {
    auto doc = service.Get(kDb, Path(w.path), w.commit_ts);
    ASSERT_TRUE(doc.ok()) << w.path << "@" << w.commit_ts << ": "
                          << doc.status();
    ASSERT_TRUE(doc->has_value()) << "acked write lost: " << w.path << "@"
                                  << w.commit_ts;
    EXPECT_EQ((*doc)->GetField(Field("v"))->integer_value(), w.value)
        << "acked write overwritten in place: " << w.path;
  }

  // Invariant 2: the transactional counter saw each acked increment exactly
  // once; unknown-outcome increments may or may not have landed, nothing
  // else may move it.
  auto counter = service.Get(kDb, Path("/chaos/counter"));
  ASSERT_TRUE(counter.ok() && counter->has_value());
  int64_t final_count = (*counter)->GetField(Field("v"))->integer_value();
  EXPECT_GE(final_count, txn_acked) << "acked increment lost";
  EXPECT_LE(final_count, txn_acked + txn_unknown) << "increment duplicated";

  // Invariant 3: every delivered snapshot was timestamp-consistent — the
  // query re-run at snapshot_ts reproduces the delivered result.
  std::vector<HistoryEntry> history;
  std::vector<std::string> violations;
  std::map<std::string, int64_t> final_model;
  int terminal_errors;
  {
    MutexLock lock(&recorder.mu);
    history = recorder.history;
    violations = recorder.violations;
    final_model = recorder.model;
    terminal_errors = recorder.terminal_errors;
  }
  EXPECT_TRUE(violations.empty())
      << violations.size() << " stream violations, first: " << violations[0];
  ASSERT_FALSE(history.empty());
  for (const HistoryEntry& entry : history) {
    auto replay = service.RunQuery(kDb, chaos_query, entry.ts);
    ASSERT_TRUE(replay.ok()) << "replay at ts=" << entry.ts << ": "
                             << replay.status();
    std::map<std::string, int64_t> expected;
    for (const Document& doc : replay->result.documents) {
      expected[doc.name().CanonicalString()] =
          doc.GetField(Field("v"))->integer_value();
    }
    std::string acked_log;
    if (entry.docs != expected) {
      for (const AckedWrite& w : acked) {
        acked_log += "\n  acked " + w.path + "=" +
                     std::to_string(w.value) + " @" +
                     std::to_string(w.commit_ts);
      }
    }
    ASSERT_EQ(entry.docs, expected)
        << "snapshot at ts=" << entry.ts
        << (entry.is_reset ? " (reset)" : " (incremental)")
        << " not timestamp-consistent" << acked_log;
  }

  // Invariant 4: convergence — the surviving listener's model matches the
  // authoritative query result, every present value is one the application
  // actually wrote, and the lock table is drained.
  auto authoritative = service.RunQuery(kDb, chaos_query);
  ASSERT_TRUE(authoritative.ok());
  std::map<std::string, int64_t> truth;
  for (const Document& doc : authoritative->result.documents) {
    truth[doc.name().CanonicalString()] =
        doc.GetField(Field("v"))->integer_value();
  }
  EXPECT_EQ(final_model, truth) << "listener did not reconverge";

  std::map<std::string, std::set<int64_t>> admissible;
  for (int i = 0; i < kKeys; ++i) admissible[KeyPath(i)].insert(0);
  admissible["/chaos/counter"];  // checked via invariant 2
  for (const AckedWrite& w : acked) admissible[w.path].insert(w.value);
  for (const auto& [path, values] : unknown) {
    admissible[path].insert(values.begin(), values.end());
  }
  for (const auto& [name, value] : truth) {
    if (name == "/chaos/counter") continue;
    EXPECT_TRUE(admissible[name].count(value) != 0)
        << "phantom value " << value << " at " << name;
  }
  EXPECT_EQ(service.spanner().lock_manager().LockCount(), 0);

  (void)terminal_errors;  // informational; terminal teardown is legal

  FaultRegistry::Global().SetLatencyClock(nullptr);
  LockOrderChecker::SetEnabled(false);

  // The run is only interesting if faults actually fired. The writers wait
  // for the first armed window (which fires deterministically on the first
  // commit), so a zero-fire run requires the scheduler thread to be starved
  // past the writers' entire wait budget — skip rather than fail a run
  // whose invariants all held.
  int64_t total_fires = 0;
  for (const FaultPointStats& p : FaultRegistry::Global().KnownPoints()) {
    total_fires += p.total_fires;
  }
  if (total_fires == 0) {
    GTEST_SKIP() << "fault schedule never fired (vacuous run)";
  }
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void TearDown() override {
    FaultRegistry::Global().DisarmAll();
    FaultRegistry::Global().SetLatencyClock(nullptr);
  }
};

TEST_P(ChaosTest, SeededFaultScheduleKeepsInvariants) { RunChaos(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// CI's seed matrix: CHAOS_SEED=<n> exercises one extra schedule per job.
TEST(ChaosEnvTest, RunsSeedFromEnvironment) {
  const char* env = std::getenv("CHAOS_SEED");
  if (env == nullptr) GTEST_SKIP() << "CHAOS_SEED not set";
  RunChaos(std::strtoull(env, nullptr, 10));
  FaultRegistry::Global().DisarmAll();
  FaultRegistry::Global().SetLatencyClock(nullptr);
}

}  // namespace
}  // namespace firestore
