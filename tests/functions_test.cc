// Tests of the Cloud Functions stand-in: dispatch, at-least-once retries,
// and deploy races (unregistered handlers).

#include <gtest/gtest.h>

#include "functions/functions.h"
#include "service/service.h"
#include "tests/test_support.h"

namespace firestore::functions {
namespace {

using backend::Mutation;
using backend::TriggerEvent;
using model::Value;
using testing::Field;
using testing::Path;

constexpr char kDb[] = "projects/p/databases/d";

class FunctionsTest : public ::testing::Test {
 protected:
  FunctionsTest() : clock_(1'000'000'000), service_(&clock_) {
    FS_CHECK_OK(service_.CreateDatabase(kDb));
    FS_CHECK_OK(service_.RegisterTrigger(kDb, "onDoc", {"docs", "{id}"}));
  }

  void Write(const std::string& path, int64_t v) {
    FS_CHECK(service_
                 .Commit(kDb, {Mutation::Set(Path(path),
                                             {{"v", Value::Integer(v)}})})
                 .ok());
  }

  ManualClock clock_;
  service::FirestoreService service_;
};

TEST_F(FunctionsTest, DispatchesInCommitOrder) {
  std::vector<int64_t> seen;
  service_.functions().Register("onDoc", [&](const TriggerEvent& e) {
    seen.push_back(
        e.change.new_doc->GetField(Field("v"))->integer_value());
    return Status::Ok();
  });
  Write("/docs/a", 1);
  Write("/docs/b", 2);
  Write("/docs/a", 3);
  EXPECT_EQ(service_.functions().DispatchPending(service_.spanner()), 3);
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 2, 3}));
  // Commit timestamps ride along and are increasing.
}

TEST_F(FunctionsTest, FailedHandlerRetriesAtLeastOnce) {
  int attempts = 0;
  service_.functions().Register("onDoc", [&](const TriggerEvent& e) {
    (void)e;
    ++attempts;
    if (attempts < 3) return UnavailableError("flaky downstream");
    return Status::Ok();
  });
  Write("/docs/a", 1);
  // Drain mode stops after the first failure to avoid spinning; repeated
  // pumps eventually deliver.
  int delivered = 0;
  for (int i = 0; i < 5 && delivered == 0; ++i) {
    delivered = service_.functions().DispatchPending(service_.spanner());
  }
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(service_.functions().failed(), 2);
  EXPECT_EQ(service_.functions().dispatched(), 1);
}

TEST_F(FunctionsTest, UnregisteredFunctionDropsMessage) {
  Write("/docs/a", 1);  // no handler registered
  EXPECT_EQ(service_.functions().DispatchPending(service_.spanner()), 0);
  // Message was consumed (dropped), not requeued.
  EXPECT_EQ(service_.spanner().queue().Size(backend::kTriggerTopic), 0u);
}

TEST_F(FunctionsTest, UnregisterStopsDelivery) {
  int calls = 0;
  service_.functions().Register("onDoc", [&](const TriggerEvent&) {
    ++calls;
    return Status::Ok();
  });
  Write("/docs/a", 1);
  service_.functions().DispatchPending(service_.spanner());
  service_.functions().Unregister("onDoc");
  Write("/docs/b", 2);
  service_.functions().DispatchPending(service_.spanner());
  EXPECT_EQ(calls, 1);
}

TEST_F(FunctionsTest, DeleteEventCarriesOldDocument) {
  std::optional<TriggerEvent> event;
  service_.functions().Register("onDoc", [&](const TriggerEvent& e) {
    event = e;
    return Status::Ok();
  });
  Write("/docs/a", 42);
  service_.functions().DispatchPending(service_.spanner());
  FS_CHECK(service_.Commit(kDb, {Mutation::Delete(Path("/docs/a"))}).ok());
  service_.functions().DispatchPending(service_.spanner());
  ASSERT_TRUE(event.has_value());
  EXPECT_TRUE(event->change.deleted);
  ASSERT_TRUE(event->change.old_doc.has_value());
  EXPECT_EQ(event->change.old_doc->GetField(Field("v"))->integer_value(),
            42);
  EXPECT_FALSE(event->change.new_doc.has_value());
}

TEST_F(FunctionsTest, MaxMessagesBoundsWork) {
  int calls = 0;
  service_.functions().Register("onDoc", [&](const TriggerEvent&) {
    ++calls;
    return Status::Ok();
  });
  for (int i = 0; i < 5; ++i) Write("/docs/d" + std::to_string(i), i);
  EXPECT_EQ(service_.functions().DispatchPending(service_.spanner(), 2), 2);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(service_.functions().DispatchPending(service_.spanner()), 3);
  EXPECT_EQ(calls, 5);
}

// A handler that writes back into the database (the common aggregate-update
// pattern from paper §III-F: "define follow-up actions in those handlers").
TEST_F(FunctionsTest, HandlerMayWriteBack) {
  FS_CHECK_OK(
      service_.RegisterTrigger(kDb, "countDocs", {"items", "{id}"}));
  service_.functions().Register("countDocs", [&](const TriggerEvent& e) {
    (void)e;
    auto current =
        service_.Get(kDb, Path("/meta/counter"));
    int64_t n = current->has_value()
                    ? (*current)->GetField(Field("n"))->integer_value()
                    : 0;
    return service_
        .Commit(kDb, {Mutation::Set(Path("/meta/counter"),
                                    {{"n", Value::Integer(n + 1)}})})
        .status();
  });
  for (int i = 0; i < 3; ++i) {
    FS_CHECK(service_
                 .Commit(kDb, {Mutation::Set(
                                  Path("/items/i" + std::to_string(i)),
                                  {{"v", Value::Integer(i)}})})
                 .ok());
  }
  service_.functions().DispatchPending(service_.spanner());
  auto counter = service_.Get(kDb, Path("/meta/counter"));
  ASSERT_TRUE(counter.ok() && counter->has_value());
  EXPECT_EQ((*counter)->GetField(Field("n"))->integer_value(), 3);
}

}  // namespace
}  // namespace firestore::functions
